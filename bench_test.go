// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (see the experiment index in DESIGN.md). Each benchmark
// exercises the code path that regenerates the artifact; the heavyweight
// sweeps (Fig 13–15) run on representative subsets so the whole suite
// completes in minutes — the full-scale runs live in cmd/experiments.
package nnbaton

import (
	"context"
	"io"
	"testing"

	"nnbaton/internal/c3p"
	"nnbaton/internal/dse"
	"nnbaton/internal/energy"
	"nnbaton/internal/engine"
	"nnbaton/internal/functional"
	"nnbaton/internal/halo"
	"nnbaton/internal/hardware"
	"nnbaton/internal/mapper"
	"nnbaton/internal/mapping"
	"nnbaton/internal/obs"
	"nnbaton/internal/serve"
	"nnbaton/internal/simba"
	"nnbaton/internal/workload"
)

var benchCM = hardware.MustCostModel()

// BenchmarkTable1EnergyModel prices a traffic record through the Table I
// cost model.
func BenchmarkTable1EnergyModel(b *testing.B) {
	tr := c3p.Traffic{
		DRAMActReads: 1 << 20, DRAMWtReads: 1 << 21, DRAMOutWrites: 1 << 18,
		D2DActs: 1 << 19, AL2Writes: 1 << 20, AL2Reads: 1 << 21,
		AL1Writes: 1 << 20, AL1Reads: 1 << 24, WL1Writes: 1 << 19, WL1Reads: 1 << 22,
		OL2Writes: 1 << 18, OL2Reads: 1 << 18, OL1RMW: 1 << 23, MACs: 1 << 26,
	}
	hw := hardware.CaseStudy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		br := energy.FromTraffic(tr, hw, benchCM)
		if br.Total() <= 0 {
			b.Fatal("bad breakdown")
		}
	}
}

// BenchmarkTable2SpaceEnum enumerates the Table II compute allocations.
func BenchmarkTable2SpaceEnum(b *testing.B) {
	s := dse.TableII()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(s.ComputeConfigs(2048))+len(s.ComputeConfigs(4096)) == 0 {
			b.Fatal("empty space")
		}
	}
}

// BenchmarkFig7HaloPatterns sweeps tile sizes for the two Fig 7 layers and
// both aspect ratios.
func BenchmarkFig7HaloPatterns(b *testing.B) {
	rn, err := workload.ResNet50(512).Layer("conv1")
	if err != nil {
		b.Fatal(err)
	}
	vgg, err := workload.VGG16(512).Layer("conv3")
	if err != nil {
		b.Fatal(err)
	}
	elems := []int{4, 16, 64, 256, 1024, 4096}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, l := range []workload.Layer{rn, vgg} {
			halo.RedundancySeries(l, elems, 1, 1)
			halo.RedundancySeries(l, elems, 1, 4)
		}
	}
}

// BenchmarkFig8PackagePattern measures the square-vs-rectangle conflict
// analysis over the package-level planar split.
func BenchmarkFig8PackagePattern(b *testing.B) {
	l, err := workload.VGG16(512).Layer("conv1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, p := range []mapping.Pattern{{Rows: 2, Cols: 2}, {Rows: 1, Cols: 4}} {
			if halo.MaxConflict(l, p) == 0 {
				b.Fatal("no conflicts computed")
			}
			halo.DuplicatedBytes(l, p)
		}
	}
}

// BenchmarkFig10MemoryModel fits the linear memory model from the macro
// libraries.
func BenchmarkFig10MemoryModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := hardware.NewCostModel(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11SpatialPartitions runs the per-combo mapping study on the
// common representative layer.
func BenchmarkFig11SpatialPartitions(b *testing.B) {
	l, err := workload.ResNet50(224).Layer("res2a_branch2b")
	if err != nil {
		b.Fatal(err)
	}
	hw := hardware.CaseStudy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mapper.BestPerSpatialCombo(l, hw, benchCM)) == 0 {
			b.Fatal("no combos")
		}
	}
}

// BenchmarkFig12SimbaLayers compares Simba and NN-Baton on one layer.
func BenchmarkFig12SimbaLayers(b *testing.B) {
	l, err := workload.VGG16(224).Layer("conv12")
	if err != nil {
		b.Fatal(err)
	}
	hw := hardware.CaseStudy()
	g := simba.DefaultGrid(hw)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sr, err := simba.Evaluate(l, hw, g)
		if err != nil {
			b.Fatal(err)
		}
		opt, err := mapper.Search(l, hw, benchCM, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if opt.Energy.Total() >= energy.FromTraffic(sr.Traffic, hw, benchCM).Total() {
			b.Fatal("NN-Baton lost to Simba")
		}
	}
}

// BenchmarkFig13SimbaModels runs the model-level comparison on AlexNet.
func BenchmarkFig13SimbaModels(b *testing.B) {
	tool := New()
	m := AlexNet(224)
	hw := CaseStudyHardware()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmp, err := tool.CompareSimba(m, hw)
		if err != nil {
			b.Fatal(err)
		}
		if cmp.SavingsRatio <= 0 {
			b.Fatal("no savings")
		}
	}
}

// benchSpace is a reduced Table II used by the sweep benchmarks.
func benchSpace() dse.Space {
	return dse.Space{
		Vector: []int{8}, Lanes: []int{8, 16}, Cores: []int{2, 4, 8}, Chiplets: []int{1, 2, 4, 8},
		OL1PerLane: []int{144}, AL1: []int{1024, 4096}, WL1: []int{16384, 65536}, AL2: []int{65536},
	}
}

// BenchmarkFig14Granularity runs the chiplet-granularity study on AlexNet
// over a reduced space.
func BenchmarkFig14Granularity(b *testing.B) {
	m := AlexNet(224)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dse.Granularity(context.Background(), m, benchSpace(), 1024, 2.0, hardware.DefaultProportion(), engine.New(benchCM))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkFig15FullDSE runs the compute x memory sweep on AlexNet over a
// reduced space.
func BenchmarkFig15FullDSE(b *testing.B) {
	m := AlexNet(224)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dse.Explore(context.Background(), m, benchSpace(), 1024, 3.0, engine.New(benchCM))
		if err != nil {
			b.Fatal(err)
		}
		if res.Swept == 0 {
			b.Fatal("nothing swept")
		}
	}
}

// BenchmarkAblationRotation measures the mapping search with the rotating
// transfer disabled — the ablation called out in DESIGN.md.
func BenchmarkAblationRotation(b *testing.B) {
	l, err := workload.VGG16(224).Layer("conv3")
	if err != nil {
		b.Fatal(err)
	}
	hw := hardware.CaseStudy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		with, err := mapper.Search(l, hw, benchCM, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := mapper.Search(l, hw, benchCM, mapper.Config{DisableRotation: true})
		if err != nil {
			b.Fatal(err)
		}
		if with.Energy.Total() > without.Energy.Total() {
			b.Fatal("rotation hurt energy")
		}
	}
}

// BenchmarkC3PAnalyze measures the core analytical engine on a single
// mapping — the unit of work every sweep multiplies.
func BenchmarkC3PAnalyze(b *testing.B) {
	l, err := workload.VGG16(224).Layer("conv5")
	if err != nil {
		b.Fatal(err)
	}
	hw := hardware.CaseStudy()
	m := mapping.Mapping{
		PackageSpatial: mapping.SpatialC, PackageTemporal: mapping.ChannelPriority,
		ChipletSpatial: mapping.SpatialC, ChipletCSplit: 8, ChipletPattern: mapping.Pattern{Rows: 1, Cols: 1},
		ChipletTemporal: mapping.PlanePriority,
		HOt:             14, WOt: 14, COt: 64, HOc: 4, WOc: 4, Rotate: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, err := c3p.Analyze(l, hw, m)
		if err != nil {
			b.Fatal(err)
		}
		if a.Traffic().DRAMActReads == 0 {
			b.Fatal("no traffic")
		}
	}
}

// BenchmarkAblationGreedySearch compares the heuristic single-shot mapper
// against the exhaustive search — the search-quality-vs-cost ablation.
func BenchmarkAblationGreedySearch(b *testing.B) {
	l, err := workload.VGG16(224).Layer("conv8")
	if err != nil {
		b.Fatal(err)
	}
	hw := hardware.CaseStudy()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := mapper.SearchGreedy(l, hw, benchCM)
		if err != nil {
			b.Fatal(err)
		}
		if g.Energy.Total() <= 0 {
			b.Fatal("degenerate greedy mapping")
		}
	}
}

// BenchmarkFunctionalExecution measures the bit-exact mapped execution used
// to validate mapping semantics.
func BenchmarkFunctionalExecution(b *testing.B) {
	l := workload.Layer{Model: "b", Name: "conv", HO: 20, WO: 20, CO: 64, CI: 16,
		R: 3, S: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	hw := hardware.CaseStudy()
	opt, err := mapper.Search(l, hw, benchCM, mapper.Config{})
	if err != nil {
		b.Fatal(err)
	}
	in, w := functional.Fill(l, 42)
	ref := functional.Reference(l, in, w)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := functional.ExecuteMapped(l, hw, opt.Analysis.Map, in, w)
		if err != nil {
			b.Fatal(err)
		}
		if functional.Equal(ref, got) != nil {
			b.Fatal("functional mismatch")
		}
	}
}

// benchSearchLayer is the heavy ResNet-50 conv the single-layer search
// benchmarks run on — the same representative layer as the Fig 11 study.
func benchSearchLayer(b *testing.B) workload.Layer {
	l, err := workload.ResNet50(224).Layer("res2a_branch2b")
	if err != nil {
		b.Fatal(err)
	}
	return l
}

// BenchmarkSearchLayerExhaustive measures the retained exhaustive reference
// search on the heavy conv: every candidate pays the full
// analyze→traffic→energy→simulate pipeline.
func BenchmarkSearchLayerExhaustive(b *testing.B) {
	l := benchSearchLayer(b)
	hw := hardware.CaseStudy()
	cfg := mapper.Config{Objective: mapper.MinEnergy, KeepTop: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mapper.SearchExhaustive(l, hw, benchCM, cfg)) == 0 {
			b.Fatal("no options")
		}
	}
}

// BenchmarkSearchLayerPruned measures the branch-and-bound search on the same
// layer and config — result-identical to the exhaustive reference (pinned by
// TestSearchAllMatchesExhaustiveZoo) but with bound and stage pruning plus
// subtree parallelism. Extra metrics report the candidate funnel.
func BenchmarkSearchLayerPruned(b *testing.B) {
	l := benchSearchLayer(b)
	hw := hardware.CaseStudy()
	ctr := &mapper.Counters{
		Generated:      &obs.Counter{},
		BoundPruned:    &obs.Counter{},
		StagePruned:    &obs.Counter{},
		Evaluated:      &obs.Counter{},
		FloorsComputed: &obs.Counter{},
		HeapPopped:     &obs.Counter{},
	}
	cfg := mapper.Config{Objective: mapper.MinEnergy, KeepTop: 8, Counters: ctr}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mapper.SearchAll(l, hw, benchCM, cfg)) == 0 {
			b.Fatal("no options")
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(ctr.Generated.Value())/n, "candidates/op")
	b.ReportMetric(float64(ctr.BoundPruned.Value()+ctr.StagePruned.Value())/n, "pruned/op")
	b.ReportMetric(float64(ctr.Evaluated.Value())/n, "evaluated/op")
	b.ReportMetric(float64(ctr.FloorsComputed.Value())/n, "floors/op")
	b.ReportMetric(float64(ctr.HeapPopped.Value())/n, "popped/op")
}

// BenchmarkSearchLayerMeshPruned is the branch-and-bound search on the same
// layer and config with the package fabric switched to the 2D mesh: the
// admissible floor scales its D2D term by the mesh's TotalHop/Chiplets
// rational, so this tracks whether the generic topology path keeps the
// pruned search competitive with the ring's closed forms (benchjson derives
// the mesh-vs-ring ratio from this pair).
func BenchmarkSearchLayerMeshPruned(b *testing.B) {
	l := benchSearchLayer(b)
	hw := hardware.CaseStudy()
	hw.Topology = hardware.TopoMesh
	cfg := mapper.Config{Objective: mapper.MinEnergy, KeepTop: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mapper.SearchAll(l, hw, benchCM, cfg)) == 0 {
			b.Fatal("no options")
		}
	}
}

// BenchmarkSearchLayerPrunedSerial is the pruned search pinned to one worker,
// isolating the bound/staging win from the parallel speedup.
func BenchmarkSearchLayerPrunedSerial(b *testing.B) {
	l := benchSearchLayer(b)
	hw := hardware.CaseStudy()
	cfg := mapper.Config{Objective: mapper.MinEnergy, KeepTop: 8, Workers: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(mapper.SearchAll(l, hw, benchCM, cfg)) == 0 {
			b.Fatal("no options")
		}
	}
}

// BenchmarkEngineEvalModelResNet50Cold measures a full ResNet-50 search on a
// fresh engine: shape deduplication applies within the model (unique shapes
// only), but nothing is pre-cached.
func BenchmarkEngineEvalModelResNet50Cold(b *testing.B) {
	m := ResNet50(224)
	hw := CaseStudyHardware()
	b.ReportAllocs()
	var searches int64
	for i := 0; i < b.N; i++ {
		eng := engine.New(benchCM)
		res, err := eng.EvalModel(context.Background(), m, hw, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete() {
			b.Fatal("incomplete mapping")
		}
		searches = eng.Stats().Searches
	}
	b.ReportMetric(float64(searches), "searches/op")
}

// BenchmarkEngineEvalModelResNet50Warm measures the same evaluation served
// entirely from the memoized cache — the steady state of a long-lived
// serving process.
func BenchmarkEngineEvalModelResNet50Warm(b *testing.B) {
	m := ResNet50(224)
	hw := CaseStudyHardware()
	eng := engine.New(benchCM)
	if _, err := eng.EvalModel(context.Background(), m, hw, mapper.Config{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eng.EvalModel(context.Background(), m, hw, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete() {
			b.Fatal("incomplete mapping")
		}
	}
}

// BenchmarkEngineEvalModelResNet50WarmObserved is the warm-cache evaluation
// with a live metrics registry and progress sink attached. Compare against
// BenchmarkEngineEvalModelResNet50Warm (the nil-sink fast path) to bound the
// cost of enabling observability; the nil path itself must not regress.
func BenchmarkEngineEvalModelResNet50WarmObserved(b *testing.B) {
	m := ResNet50(224)
	hw := CaseStudyHardware()
	eng := engine.NewObserved(benchCM, 0, obs.NewRegistry(), obs.NewWriterSink(io.Discard))
	if _, err := eng.EvalModel(context.Background(), m, hw, mapper.Config{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := eng.EvalModel(context.Background(), m, hw, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete() {
			b.Fatal("incomplete mapping")
		}
	}
}

// BenchmarkServeReferenceTrace replays the reference serving trace against a
// pre-built healthy oracle: the discrete-event loop alone, the steady state
// of a long-lived serving process whose engine cache is warm. The extra
// metric commits the simulated serving throughput (requests per second of
// span) to BENCH_mapper.json — it is deterministic, so drift means the DES
// or the mapper changed, not the machine.
func BenchmarkServeReferenceTrace(b *testing.B) {
	eng := engine.New(benchCM)
	hw := CaseStudyHardware()
	models := []workload.Model{AlexNet(224), DarkNet19(224)}
	oracle, err := serve.BuildOracle(context.Background(), eng, models, hw, hardware.FaultMask{}, mapper.Config{})
	if err != nil {
		b.Fatal(err)
	}
	tr := serve.ReferenceTrace(200, 2500, "alexnet", "darknet19")
	cfg := serve.Config{MaxBatch: 8, WindowUS: 500, Alpha: 0.8}
	b.ResetTimer()
	b.ReportAllocs()
	var rps float64
	for i := 0; i < b.N; i++ {
		res, err := serve.Simulate(tr, oracle, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != 200 {
			b.Fatal("lost requests")
		}
		rps = res.ThroughputRPS
	}
	b.ReportMetric(rps, "req/s")
}

// benchSweepHWs is the hardware neighborhood the warm-start sweep benchmarks
// walk: the case-study point with its core count and A-L1 allocation varied,
// the adjacency pattern a Fig 14/15 sweep produces.
func benchSweepHWs() []hardware.Config {
	base := hardware.CaseStudy()
	var hws []hardware.Config
	for _, cores := range []int{base.Cores / 2, base.Cores, base.Cores * 2} {
		for _, al1 := range []int{base.AL1Bytes, base.AL1Bytes * 2} {
			hw := base
			hw.Cores = cores
			hw.AL1Bytes = al1
			hws = append(hws, hw)
		}
	}
	return hws
}

// benchSweepModel is the workload the warm-start sweep benchmarks map at
// every point: the heavy ResNet-50 convs where the mapping search dominates
// the sweep cost (light layers would bury the search under fixed per-point
// overhead).
func benchSweepModel(b *testing.B) workload.Model {
	rn := ResNet50(224)
	m := workload.Model{Name: "resnet50-heavy", Resolution: 224}
	for _, name := range []string{"res2a_branch2b", "res3a_branch2b", "res4a_branch2b"} {
		l, err := rn.Layer(name)
		if err != nil {
			b.Fatal(err)
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

// benchSweep runs one end-to-end EvalSweep on a fresh evaluator per
// iteration, so cross-point warm-starting (when enabled) is the only
// carryover between points — the memo cache never spans iterations.
func benchSweep(b *testing.B, disableWarmStart bool) {
	m := benchSweepModel(b)
	hws := benchSweepHWs()
	models := []workload.Model{m}
	b.ReportAllocs()
	var hits, misses int64
	for i := 0; i < b.N; i++ {
		eng := engine.NewFromConfig(benchCM, engine.Config{DisableWarmStart: disableWarmStart})
		pts, err := eng.EvalSweep(context.Background(), models, hws, mapper.Config{})
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
		}
		st := eng.Stats()
		hits, misses = st.WarmStartHits, st.WarmStartMisses
	}
	b.ReportMetric(float64(hits), "warmhits/op")
	b.ReportMetric(float64(misses), "warmmisses/op")
}

// BenchmarkSweepWarmStart measures the reduced hardware sweep with
// cross-point incumbent warm-starting on: each point's searches are seeded by
// the nearest solved neighbor (benchjson derives the cold/warm sweep speedup
// from this pair).
func BenchmarkSweepWarmStart(b *testing.B) { benchSweep(b, false) }

// BenchmarkSweepColdStart is the identical sweep with warm-starting disabled
// — the result-identical baseline the warm variant is measured against.
func BenchmarkSweepColdStart(b *testing.B) { benchSweep(b, true) }

// BenchmarkEngineGranularityCold runs the reduced Fig 14 sweep on a fresh
// engine per iteration (the pre-refactor behavior: every sweep pays for its
// own searches).
func BenchmarkEngineGranularityCold(b *testing.B) {
	m := AlexNet(224)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dse.Granularity(context.Background(), m, benchSpace(), 1024, 2.0,
			hardware.DefaultProportion(), engine.New(benchCM))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

// BenchmarkEngineGranularityWarm reuses one engine across iterations, so the
// sweep is served from the shape-deduplicated cache.
func BenchmarkEngineGranularityWarm(b *testing.B) {
	m := AlexNet(224)
	eng := engine.New(benchCM)
	if _, err := dse.Granularity(context.Background(), m, benchSpace(), 1024, 2.0,
		hardware.DefaultProportion(), eng); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := dse.Granularity(context.Background(), m, benchSpace(), 1024, 2.0,
			hardware.DefaultProportion(), eng)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}
