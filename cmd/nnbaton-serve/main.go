// Command nnbaton-serve replays an inference arrival trace against a
// (possibly degraded) multichip package: a discrete-event loop applies a
// batching/queueing policy on top of the analytical engine's per-inference
// service times and reports tail latency, throughput and fabric utilization
// per fault scenario.
//
// Usage:
//
//	nnbaton-serve -trace requests.csv -batch 8 -window 500
//	nnbaton-serve -requests 200 -gap 2000 -faults "healthy;chiplet1;chiplet1,freq90%"
//
// The trace format is the CHIPSIM-style CSV
// "net_idx,inject_time_us,network,num_inputs"; without -trace a deterministic
// reference trace is generated from -requests/-gap/-mix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"nnbaton"
	"nnbaton/internal/hardware"
	"nnbaton/internal/obs"
	"nnbaton/internal/workload"
)

// options collects the flag values of one invocation.
type options struct {
	trace    string
	requests int
	gapUS    float64
	mix      string
	res      int

	chiplets int
	cores    int
	lanes    int
	vector   int
	topology string
	faults   string

	batch    int
	windowUS float64
	alpha    float64

	stats      bool
	metrics    string
	pprofAddr  string
	timeout    time.Duration
	retries    int
	checkpoint string
	resume     bool
	cacheDir   string
}

// validate rejects nonsense flag values before any work starts.
func (o options) validate() error {
	if o.trace == "" && o.requests <= 0 {
		return fmt.Errorf("-requests must be positive when no -trace file is given")
	}
	if o.trace == "" && o.gapUS <= 0 {
		return fmt.Errorf("-gap must be positive microseconds")
	}
	if o.windowUS < 0 {
		return fmt.Errorf("-window must be non-negative microseconds")
	}
	if o.alpha < 0 || o.alpha > 1 {
		return fmt.Errorf("-alpha must be in (0,1] (0 selects the default 1)")
	}
	if o.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.retries)
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if _, err := nnbaton.ParseTopology(o.topology); err != nil {
		return fmt.Errorf("-topology: %w", err)
	}
	// Fail fast on unwritable persistence targets, before any evaluation.
	if o.checkpoint != "" {
		if err := nnbaton.ValidateCheckpointPath(o.checkpoint); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if o.cacheDir != "" {
		if err := nnbaton.EnsureCacheDir(o.cacheDir); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.trace, "trace", "", "arrival-trace CSV (net_idx,inject_time_us,network,num_inputs); empty generates a reference trace")
	flag.IntVar(&o.requests, "requests", 120, "reference trace: number of requests")
	flag.Float64Var(&o.gapUS, "gap", 2500, "reference trace: mean inter-arrival gap in microseconds")
	flag.StringVar(&o.mix, "mix", "alexnet,darknet19", "reference trace: comma-separated model mix")
	flag.IntVar(&o.res, "res", 224, "input resolution every traced model is loaded at (224 or 512)")
	flag.IntVar(&o.chiplets, "chiplets", 0, "override: chiplets per package")
	flag.IntVar(&o.cores, "cores", 0, "override: cores per chiplet")
	flag.IntVar(&o.lanes, "lanes", 0, "override: lanes per core")
	flag.IntVar(&o.vector, "vector", 0, "override: vector-MAC size")
	flag.StringVar(&o.topology, "topology", "ring", "on-package interconnect: "+strings.Join(hardware.TopologyNames(), "|"))
	flag.StringVar(&o.faults, "faults", "healthy", "semicolon-separated fault scenarios to serve under (each a spec like 'chiplet2,cores3@1,freq90%' or 'healthy')")
	flag.IntVar(&o.batch, "batch", 8, "max inputs per launched batch (<= 0 unlimited)")
	flag.Float64Var(&o.windowUS, "window", 500, "batching window in microseconds, anchored at the head-of-line arrival")
	flag.Float64Var(&o.alpha, "alpha", 0.8, "marginal batch cost per extra input in (0,1]; 0 selects 1 (no amortization)")
	flag.BoolVar(&o.stats, "stats", false, "print engine search-cache statistics after the run")
	flag.StringVar(&o.metrics, "metrics", "", "write per-phase timing and engine cache metrics as JSON to this file on exit")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-point search deadline (e.g. 30s); 0 disables")
	flag.IntVar(&o.retries, "retries", 0, "max re-attempts after a retryable point failure (panic, deadline, transient)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "journal completed scenario evaluations to this JSONL file (crash-safe)")
	flag.BoolVar(&o.resume, "resume", false, "replay scenarios already journaled in the -checkpoint file instead of re-evaluating them")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persist layer-search results to this crash-safe cache directory and reuse them across runs")
	flag.Parse()
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton-serve:", err)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton-serve:", err)
		os.Exit(1)
	}
}

// loadTrace reads the -trace file or generates the reference trace.
func loadTrace(o options) (nnbaton.ServingTrace, error) {
	if o.trace == "" {
		var mix []string
		for _, m := range strings.Split(o.mix, ",") {
			if m = strings.TrimSpace(m); m != "" {
				mix = append(mix, m)
			}
		}
		return nnbaton.ReferenceServingTrace(o.requests, o.gapUS, mix...), nil
	}
	f, err := os.Open(o.trace)
	if err != nil {
		return nnbaton.ServingTrace{}, err
	}
	defer f.Close()
	return nnbaton.ParseServingTrace(f)
}

// fabric builds the package configuration from the case study plus overrides.
func fabric(o options) nnbaton.Hardware {
	hw := nnbaton.CaseStudyHardware()
	if o.chiplets > 0 || o.cores > 0 || o.lanes > 0 || o.vector > 0 {
		if o.chiplets > 0 {
			hw.Chiplets = o.chiplets
		}
		if o.cores > 0 {
			hw.Cores = o.cores
		}
		if o.lanes > 0 {
			hw.Lanes = o.lanes
		}
		if o.vector > 0 {
			hw.Vector = o.vector
		}
		hw = hardware.Config{Chiplets: hw.Chiplets, Cores: hw.Cores, Lanes: hw.Lanes, Vector: hw.Vector}.
			WithProportionalMemory(hardware.DefaultProportion())
	}
	hw.Topology, _ = nnbaton.ParseTopology(o.topology) // validated on line one
	return hw
}

func run(ctx context.Context, o options) error {
	if o.pprofAddr != "" {
		addr, err := obs.ServePprof(o.pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}
	tr, err := loadTrace(o)
	if err != nil {
		return err
	}
	hw := fabric(o)
	models := make([]nnbaton.Model, 0, len(tr.Models()))
	for _, name := range tr.Models() {
		m, err := workload.Load(name, o.res)
		if err != nil {
			return err
		}
		models = append(models, m)
	}
	var reg *obs.Registry
	if o.metrics != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg) // capture serve.simulate and engine phases too
		defer func() {
			if err := reg.WriteFile(o.metrics); err != nil {
				fmt.Fprintln(os.Stderr, "nnbaton-serve:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", o.metrics)
			}
		}()
	}
	var journal *nnbaton.Checkpoint
	if o.checkpoint != "" {
		journal, err = nnbaton.OpenCheckpoint(o.checkpoint, o.resume)
		if err != nil {
			return err
		}
		defer journal.Close()
		if o.resume {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d journaled points\n", o.checkpoint, journal.Len())
		}
	}
	cfg := nnbaton.EngineConfig{
		PointTimeout: o.timeout,
		MaxRetries:   o.retries,
		Registry:     reg,
		Journal:      journal,
	}
	if o.cacheDir != "" {
		cache, err := nnbaton.OpenResultCache(o.cacheDir, nnbaton.StoreOptions{Registry: reg})
		if err != nil {
			return err
		}
		defer cache.Close()
		cfg.Cache = cache
	}
	tool := nnbaton.NewWithConfig(cfg)
	defer func() {
		if o.stats {
			fmt.Fprintln(os.Stderr, tool.EngineStats())
		}
	}()
	policy := nnbaton.ServingConfig{MaxBatch: o.batch, WindowUS: o.windowUS, Alpha: o.alpha}
	var masks []nnbaton.FaultMask
	for _, spec := range strings.Split(o.faults, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		mask, err := nnbaton.ParseFault(spec, hw)
		if err != nil {
			return err
		}
		masks = append(masks, mask)
	}
	if len(masks) == 0 {
		return fmt.Errorf("-faults lists no scenario")
	}
	// The journaled sweep path evaluates scenarios in parallel on the shared
	// search cache and, with -checkpoint, replays completed ones on -resume.
	results, err := tool.ServeTraceScenarios(ctx, tr, models, hw, masks, policy)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Serving %d requests (%d inputs) on %s (batch<=%d, window %.0fus, alpha %.1f)",
		len(tr.Requests), tr.Inputs(), hw.Tuple(), policy.MaxBatch, policy.WindowUS, policy.Alpha)
	return nnbaton.RenderServing(os.Stdout, title, results)
}
