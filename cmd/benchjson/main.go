// benchjson converts `go test -bench` text output (read from stdin) into a
// stable JSON artifact, so perf baselines can be committed and diffed — see
// the `bench` Makefile target, which uses it to produce BENCH_mapper.json.
//
// Every metric pair a benchmark line reports is kept (ns/op, B/op, allocs/op,
// plus any b.ReportMetric extras such as candidates/op or pruned/op). When
// both a `<base>Exhaustive` and `<base>Pruned` benchmark appear, a derived
// speedup/alloc-reduction summary is emitted alongside the raw numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON artifact.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	check := flag.String("check", "", "committed baseline JSON to gate against: fail on a >25% ns/op regression of any search/engine/sweep benchmark")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	derive(rep)

	if *check != "" {
		if err := checkBaseline(rep, *check, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// regressionTolerance is how much slower than the committed baseline a gated
// benchmark may run before -check fails: generous enough to absorb machine
// noise, tight enough to catch a real search or engine regression.
const regressionTolerance = 1.25

// gated reports whether a benchmark participates in the -check regression
// gate: the search and engine paths whose performance this repo's perf PRs
// commit to (pure cost-model microbenchmarks are too noisy to gate on).
func gated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkSearch") ||
		strings.HasPrefix(name, "BenchmarkEngine") ||
		strings.HasPrefix(name, "BenchmarkSweep")
}

// checkBaseline compares a freshly parsed run against the committed baseline
// report and returns an error when any gated benchmark regressed past the
// tolerance. Benchmarks present on only one side are reported but never fail
// the gate — adding a benchmark must not require regenerating the baseline in
// the same change.
func checkBaseline(fresh *Report, path string, w io.Writer) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	baseNS := map[string]float64{}
	for _, b := range base.Benchmarks {
		if ns := b.Metrics["ns/op"]; gated(b.Name) && ns > 0 {
			baseNS[b.Name] = ns
		}
	}
	if len(baseNS) == 0 {
		return fmt.Errorf("baseline %s gates no search/engine/sweep benchmarks", path)
	}
	compared := 0
	var failures []string
	for _, b := range fresh.Benchmarks {
		want, ok := baseNS[b.Name]
		if !ok {
			if gated(b.Name) {
				fmt.Fprintf(w, "benchjson: %s: not in baseline, skipped\n", b.Name)
			}
			continue
		}
		delete(baseNS, b.Name)
		got := b.Metrics["ns/op"]
		ratio := got / want
		compared++
		verdict := "ok"
		if ratio > regressionTolerance {
			verdict = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.2fx > %.2fx tolerance)",
				b.Name, got, want, ratio, regressionTolerance))
		}
		fmt.Fprintf(w, "benchjson: %-45s %10.0f ns/op  baseline %10.0f  (%.2fx) %s\n",
			b.Name, got, want, ratio, verdict)
	}
	for name := range baseNS {
		fmt.Fprintf(w, "benchjson: %s: in baseline but not measured, skipped\n", name)
	}
	if compared == 0 {
		return fmt.Errorf("no gated benchmark overlaps the baseline")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past %.0f%%:\n  %s",
			len(failures), 100*(regressionTolerance-1), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) within tolerance\n", compared)
	return nil
}

// parse reads the text format produced by `go test -bench`: header key:value
// lines, then one line per benchmark of the shape
//
//	BenchmarkName-8   <iters>   <value> <unit>   <value> <unit> ...
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}

func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	// Strip the -GOMAXPROCS suffix so baselines diff cleanly across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", f[i], err)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}

// derive adds exhaustive-vs-pruned ratios when both sides were measured, and
// the mesh-vs-ring search cost ratio when a <base>MeshPruned twin of a
// <base>Pruned benchmark appears (the topology-axis overhead tracker).
func derive(rep *Report) {
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	put := func(key string, v float64) {
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived[key] = v
	}
	for name, ex := range byName {
		base, ok := strings.CutSuffix(name, "Exhaustive")
		if !ok {
			continue
		}
		pr, ok := byName[base+"Pruned"]
		if !ok {
			continue
		}
		if en, pn := ex.Metrics["ns/op"], pr.Metrics["ns/op"]; pn > 0 {
			put(base+"_speedup", en/pn)
		}
		if ea, pa := ex.Metrics["allocs/op"], pr.Metrics["allocs/op"]; pa > 0 {
			put(base+"_allocs_reduction", ea/pa)
		}
	}
	for name, mesh := range byName {
		base, ok := strings.CutSuffix(name, "MeshPruned")
		if !ok {
			continue
		}
		ring, ok := byName[base+"Pruned"]
		if !ok {
			continue
		}
		if mn, rn := mesh.Metrics["ns/op"], ring.Metrics["ns/op"]; rn > 0 {
			put(base+"_mesh_vs_ring", mn/rn)
		}
	}
	// Cold-vs-warm sweep ratio: the end-to-end win of cross-point incumbent
	// warm-starting.
	for name, warm := range byName {
		base, ok := strings.CutSuffix(name, "WarmStart")
		if !ok {
			continue
		}
		cold, ok := byName[base+"ColdStart"]
		if !ok {
			continue
		}
		if cn, wn := cold.Metrics["ns/op"], warm.Metrics["ns/op"]; wn > 0 {
			put(base+"_warmstart_speedup", cn/wn)
		}
	}
}
