// benchjson converts `go test -bench` text output (read from stdin) into a
// stable JSON artifact, so perf baselines can be committed and diffed — see
// the `bench` Makefile target, which uses it to produce BENCH_mapper.json.
//
// Every metric pair a benchmark line reports is kept (ns/op, B/op, allocs/op,
// plus any b.ReportMetric extras such as candidates/op or pruned/op). When
// both a `<base>Exhaustive` and `<base>Pruned` benchmark appear, a derived
// speedup/alloc-reduction summary is emitted alongside the raw numbers.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON artifact.
type Report struct {
	GOOS       string             `json:"goos,omitempty"`
	GOARCH     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	derive(rep)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads the text format produced by `go test -bench`: header key:value
// lines, then one line per benchmark of the shape
//
//	BenchmarkName-8   <iters>   <value> <unit>   <value> <unit> ...
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return nil, fmt.Errorf("%q: %w", line, err)
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return rep, nil
}

func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("too few fields")
	}
	// Strip the -GOMAXPROCS suffix so baselines diff cleanly across machines.
	name := f[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("metric value %q: %w", f[i], err)
		}
		b.Metrics[f[i+1]] = v
	}
	return b, nil
}

// derive adds exhaustive-vs-pruned ratios when both sides were measured, and
// the mesh-vs-ring search cost ratio when a <base>MeshPruned twin of a
// <base>Pruned benchmark appears (the topology-axis overhead tracker).
func derive(rep *Report) {
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	put := func(key string, v float64) {
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived[key] = v
	}
	for name, ex := range byName {
		base, ok := strings.CutSuffix(name, "Exhaustive")
		if !ok {
			continue
		}
		pr, ok := byName[base+"Pruned"]
		if !ok {
			continue
		}
		if en, pn := ex.Metrics["ns/op"], pr.Metrics["ns/op"]; pn > 0 {
			put(base+"_speedup", en/pn)
		}
		if ea, pa := ex.Metrics["allocs/op"], pr.Metrics["allocs/op"]; pa > 0 {
			put(base+"_allocs_reduction", ea/pa)
		}
	}
	for name, mesh := range byName {
		base, ok := strings.CutSuffix(name, "MeshPruned")
		if !ok {
			continue
		}
		ring, ok := byName[base+"Pruned"]
		if !ok {
			continue
		}
		if mn, rn := mesh.Metrics["ns/op"], ring.Metrics["ns/op"]; rn > 0 {
			put(base+"_mesh_vs_ring", mn/rn)
		}
	}
}
