// Command nnbaton-dse runs the pre-design flow: given a target model, a MAC
// budget and a chiplet area constraint, it explores the Table II hardware
// space and recommends the chiplet granularity and resource allocation
// (§IV-D, §VI-B).
//
// Usage:
//
//	nnbaton-dse -model vgg16 -macs 2048 -area 2 -mode granularity
//	nnbaton-dse -model resnet50 -res 512 -macs 4096 -area 3 -mode explore
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"nnbaton"
	"nnbaton/internal/obs"
	"nnbaton/internal/report"
	"nnbaton/internal/workload"
)

// options collects the flag values of one invocation.
type options struct {
	model      string
	res        int
	macs       int
	area       float64
	mode       string
	stats      bool
	progress   bool
	metrics    string
	pprofAddr  string
	timeout    time.Duration
	retries    int
	checkpoint string
	resume     bool
	fsync      bool
	cacheDir   string
	degrade    int
	faultSeed  int64
	topology   string
	shards     int
	worker     string
	leaseTTL   time.Duration
	merge      bool
}

// validate rejects nonsense flag values before any work starts, so the
// process fails on line one instead of deep inside a sweep.
func (o options) validate() error {
	if o.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.retries)
	}
	if o.degrade < 0 {
		return fmt.Errorf("-degradation must be non-negative, got %d", o.degrade)
	}
	if o.degrade > 0 && o.mode != "granularity" {
		return fmt.Errorf("-degradation requires -mode granularity (it degrades the recommended point)")
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if o.fsync && o.checkpoint == "" {
		return fmt.Errorf("-fsync requires -checkpoint")
	}
	if o.shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", o.shards)
	}
	if o.shards > 1 {
		if o.mode != "explore" {
			return fmt.Errorf("-shards requires -mode explore")
		}
		if o.checkpoint == "" {
			return fmt.Errorf("-shards requires -checkpoint (each worker journals its shards)")
		}
		if o.cacheDir == "" {
			return fmt.Errorf("-shards requires -cache-dir (lease files live on the shared store)")
		}
	}
	if o.leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive, got %v", o.leaseTTL)
	}
	if _, err := nnbaton.ParseTopology(o.topology); err != nil {
		return fmt.Errorf("-topology: %w", err)
	}
	// Fail fast on unwritable persistence targets: a sweep must not run for
	// hours and then discover it cannot record.
	if o.checkpoint != "" {
		if err := nnbaton.ValidateCheckpointPath(o.checkpoint); err != nil {
			return fmt.Errorf("-checkpoint: %w", err)
		}
	}
	if o.cacheDir != "" {
		if err := nnbaton.EnsureCacheDir(o.cacheDir); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
	}
	return nil
}

// space returns the Table II exploration space under the selected fabric.
func (o options) space() nnbaton.Space {
	s := nnbaton.TableIISpace()
	s.Topology, _ = nnbaton.ParseTopology(o.topology) // validated on line one
	return s
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "vgg16", "model name (see workload.Load) or .txt description file")
	flag.IntVar(&o.res, "res", 224, "input resolution (224 or 512)")
	flag.IntVar(&o.macs, "macs", 2048, "total MAC budget")
	flag.Float64Var(&o.area, "area", 2.0, "chiplet area constraint in mm² (0 = unconstrained)")
	flag.StringVar(&o.mode, "mode", "granularity", "granularity | explore | cost")
	flag.BoolVar(&o.stats, "stats", false, "print engine search-cache statistics after the sweep")
	flag.BoolVar(&o.progress, "progress", false, "report sweep progress (points done/total, failures, ETA) on stderr")
	flag.StringVar(&o.metrics, "metrics", "", "write per-phase timing and engine cache metrics as JSON to this file on exit")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-point search deadline (e.g. 30s); 0 disables")
	flag.IntVar(&o.retries, "retries", 0, "max re-attempts after a retryable point failure (panic, deadline, transient)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "journal completed sweep points to this JSONL file (crash-safe)")
	flag.BoolVar(&o.resume, "resume", false, "replay points already journaled in the -checkpoint file instead of re-evaluating them")
	flag.BoolVar(&o.fsync, "fsync", false, "fsync every -checkpoint record before acknowledging it (survives OS crashes and power loss, slower)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persist layer-search results to this crash-safe cache directory and reuse them across runs")
	flag.IntVar(&o.degrade, "degradation", 0, "with -mode granularity: follow up with an N-step graceful-degradation sweep of the recommended point")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the -degradation yield series")
	flag.StringVar(&o.topology, "topology", "ring", "on-package interconnect for every swept point: ring|mesh|torus")
	flag.IntVar(&o.shards, "shards", 0, "with -mode explore: shard the sweep across N cooperating worker processes (requires -checkpoint and -cache-dir)")
	flag.StringVar(&o.worker, "worker", fmt.Sprintf("pid-%d", os.Getpid()), "worker identity for sharded sweeps (diagnostic; shows up in lease files)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 30*time.Second, "sharded-sweep lease time-to-live: a dead worker's shard is reclaimed after this long without a heartbeat")
	flag.BoolVar(&o.merge, "merge", false, "merge mode: fold the checkpoint journals given as arguments into one canonical journal on stdout, then exit")
	flag.Parse()
	if o.merge {
		if err := merge(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "nnbaton-dse:", err)
			os.Exit(1)
		}
		return
	}
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton-dse:", err)
		os.Exit(2)
	}
	// Sweeps can run for minutes; Ctrl-C or a supervisor's SIGTERM cancels
	// the evaluation engine's workers cleanly instead of killing the process
	// mid-write: the checkpoint journal flushes (deferred Close), shard
	// leases release, and the exit code says the sweep did not finish.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o); err != nil {
		if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
			fmt.Fprintln(os.Stderr, "nnbaton-dse: interrupted; journaled points are durable, resume with -resume")
		} else {
			fmt.Fprintln(os.Stderr, "nnbaton-dse:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, o options) error {
	if o.pprofAddr != "" {
		addr, err := obs.ServePprof(o.pprofAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}
	m, err := workload.Load(o.model, o.res)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if o.metrics != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg) // capture c3p/sim/halo phases too
		defer func() {
			if err := reg.WriteFile(o.metrics); err != nil {
				fmt.Fprintln(os.Stderr, "nnbaton-dse:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", o.metrics)
			}
		}()
	}
	var sink obs.ProgressSink
	if o.progress {
		sink = obs.NewWriterSink(os.Stderr)
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	var journal *nnbaton.Checkpoint
	if o.checkpoint != "" {
		journal, err = nnbaton.OpenCheckpointWith(o.checkpoint, nnbaton.CheckpointOptions{Resume: o.resume, Fsync: o.fsync})
		if err != nil {
			return err
		}
		defer journal.Close()
		if o.resume {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d journaled points", o.checkpoint, journal.Len())
			if t := journal.Torn(); t > 0 {
				fmt.Fprintf(os.Stderr, " (%d torn/skipped)", t)
			}
			fmt.Fprintln(os.Stderr)
		}
	}
	cfg := nnbaton.EngineConfig{
		PointTimeout: o.timeout,
		MaxRetries:   o.retries,
		Registry:     reg,
		Sink:         sink,
		Journal:      journal,
	}
	if o.cacheDir != "" {
		cache, err := nnbaton.OpenResultCache(o.cacheDir, nnbaton.StoreOptions{Registry: reg})
		if err != nil {
			return err
		}
		defer cache.Close()
		cfg.Cache = cache
	}
	tool := nnbaton.NewWithConfig(cfg)
	defer func() {
		if o.stats {
			fmt.Fprintln(os.Stderr, tool.EngineStats())
		}
	}()
	switch o.mode {
	case "granularity":
		return granularity(ctx, tool, m, o)
	case "explore":
		return explore(ctx, tool, m, o)
	case "cost":
		return cost(ctx, tool, m, o)
	}
	return fmt.Errorf("unknown mode %q (granularity|explore|cost)", o.mode)
}

// cost runs the granularity study and prices every implementation under the
// default fabrication process (the manufacturing-cost extension).
func cost(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, o options) error {
	macs, area := o.macs, o.area
	res, err := tool.GranularityContext(ctx, m, o.space(), macs, area)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Manufacturing cost for %s, %d MACs", m.Name, macs),
		"tuple", "area mm2", "die yield", "silicon $", "assembly $", "total $", "EDP pJ*s")
	costed, err := res.WithCosts(nnbaton.DefaultProcess())
	if err != nil {
		return err
	}
	sort.Slice(costed, func(i, j int) bool { return costed[i].Cost.TotalUSD < costed[j].Cost.TotalUSD })
	for _, cp := range costed {
		if cp.MappedLayers == 0 {
			continue
		}
		t.Add(cp.HW.Tuple(), fmt.Sprintf("%.2f", cp.ChipletAreaMM2),
			report.Pct(cp.Cost.DieYield),
			fmt.Sprintf("%.2f", cp.Cost.SiliconUSD), fmt.Sprintf("%.2f", cp.Cost.AssemblyUSD),
			fmt.Sprintf("%.2f", cp.Cost.TotalUSD), fmt.Sprintf("%.3g", cp.EDP()))
	}
	return t.Render(os.Stdout)
}

func granularity(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, o options) error {
	macs, area := o.macs, o.area
	res, err := tool.GranularityContext(ctx, m, o.space(), macs, area)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Chiplet granularity for %s, %d MACs, %.1f mm² limit", m.Name, macs, area),
		"tuple", "energy uJ", "runtime ms", "EDP pJ*s", "area mm2", "feasible")
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].EDP() < res.Points[j].EDP() })
	for _, p := range res.Points {
		if p.MappedLayers == 0 {
			continue
		}
		t.Add(p.HW.Tuple(), report.UJ(p.Energy.Total()), report.MS(p.Seconds),
			fmt.Sprintf("%.3g", p.EDP()), fmt.Sprintf("%.2f", p.ChipletAreaMM2),
			fmt.Sprint(p.MeetsArea))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	best, ok := res.BestEDP()
	if !ok {
		fmt.Println("no implementation meets the area constraint")
		return nil
	}
	fmt.Printf("recommended: %s (%s)\n", best.HW.Tuple(), best)
	if o.degrade > 0 {
		return degradation(ctx, tool, m, best.HW, o)
	}
	return nil
}

// degradation answers the yield question for the recommended design point:
// how gracefully does it degrade as fabrication defects accumulate? A seeded
// yield model generates an escalating fault series; every scenario reroutes
// the ring around dead dies and remaps the model onto the surviving fabric.
func degradation(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, hw nnbaton.Hardware, o options) error {
	series, err := nnbaton.DefaultYield(o.faultSeed).Series(hw, o.degrade)
	if err != nil {
		return err
	}
	pts, err := tool.DegradationSweep(ctx, m, hw, series)
	if err != nil {
		return err
	}
	fmt.Println()
	return report.DegradationCurve(
		fmt.Sprintf("Graceful degradation of %s on %s (seed %d)", m.Name, hw.Tuple(), o.faultSeed),
		nnbaton.DegradationRows(pts)).Render(os.Stdout)
}

// merge is the -merge mode: fold worker journals into one canonical journal
// on stdout. The output is byte-identical whether the inputs are N shard
// journals or one single-process journal of the same study.
func merge(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one journal file argument")
	}
	stats, err := nnbaton.MergeCheckpoints(os.Stdout, paths...)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged %d journals: %d records (%d meta stripped, %d torn lines skipped)\n",
		stats.Files, stats.Records, stats.Meta, stats.Torn)
	return nil
}

// sharded runs this process as one worker of an N-worker exploration: shards
// are claimed through lease files under the shared cache directory, results
// journal to this worker's -checkpoint file, and dead peers' expired shards
// are reclaimed. Fold the worker journals afterwards with -merge.
func sharded(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, o options) error {
	sig := nnbaton.StudySignature(m, o.space(), o.macs, o.area, o.shards)
	mgr, err := nnbaton.NewLeaseManager(filepath.Join(o.cacheDir, "leases"), sig, o.worker,
		nnbaton.LeaseOptions{TTL: o.leaseTTL})
	if err != nil {
		return err
	}
	res, err := tool.ExploreSharded(ctx, m, o.space(), o.macs, o.area, mgr, o.shards)
	if err != nil {
		return err
	}
	fmt.Printf("worker %s: completed %d of %d shards (%v), lost %d to takeover\n",
		o.worker, len(res.Completed), o.shards, res.Completed, res.Abandoned)
	fmt.Printf("study complete; merge the worker journals with: nnbaton-dse -merge <journals...>\n")
	return nil
}

func explore(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, o options) error {
	macs, area := o.macs, o.area
	if o.shards > 1 {
		return sharded(ctx, tool, m, o)
	}
	res, err := tool.ExploreContext(ctx, m, o.space(), macs, area)
	if err != nil {
		return err
	}
	fmt.Printf("swept %d points, %d valid, %d on the area/EDP Pareto front\n",
		res.Swept, len(res.Points), len(res.ParetoFront()))
	if res.Replayed > 0 {
		fmt.Printf("replayed %d compute configurations from the checkpoint journal\n", res.Replayed)
	}
	if len(res.Failed) > 0 {
		fmt.Printf("%d compute configurations failed:\n", len(res.Failed))
		for _, f := range res.Failed {
			fmt.Printf("  %s\n", f)
		}
	}
	fmt.Println()
	t := report.New("Pareto front (area vs EDP)", "tuple", "memory", "EDP pJ*s", "area mm2")
	front := res.ParetoFront()
	sort.Slice(front, func(i, j int) bool { return front[i].ChipletAreaMM2 < front[j].ChipletAreaMM2 })
	for _, p := range front {
		t.Add(p.HW.Tuple(), p.HW.String(), fmt.Sprintf("%.3g", p.EDP()), fmt.Sprintf("%.2f", p.ChipletAreaMM2))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if res.HasBest {
		fmt.Printf("recommended under %.1f mm²: %s\n", area, res.Best.HW)
	}
	return nil
}
