// Command nnbaton-dse runs the pre-design flow: given a target model, a MAC
// budget and a chiplet area constraint, it explores the Table II hardware
// space and recommends the chiplet granularity and resource allocation
// (§IV-D, §VI-B).
//
// Usage:
//
//	nnbaton-dse -model vgg16 -macs 2048 -area 2 -mode granularity
//	nnbaton-dse -model resnet50 -res 512 -macs 4096 -area 3 -mode explore
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"

	"nnbaton"
	"nnbaton/internal/report"
	"nnbaton/internal/workload"
)

func main() {
	var (
		model = flag.String("model", "vgg16", "model name (see workload.Load) or .txt description file")
		res   = flag.Int("res", 224, "input resolution (224 or 512)")
		macs  = flag.Int("macs", 2048, "total MAC budget")
		area  = flag.Float64("area", 2.0, "chiplet area constraint in mm² (0 = unconstrained)")
		mode  = flag.String("mode", "granularity", "granularity | explore | cost")
		stats = flag.Bool("stats", false, "print engine search-cache statistics after the sweep")
	)
	flag.Parse()
	// Sweeps can run for minutes; Ctrl-C cancels the evaluation engine's
	// workers cleanly instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx, *model, *res, *macs, *area, *mode, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton-dse:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, modelName string, res, macs int, area float64, mode string, stats bool) error {
	m, err := workload.Load(modelName, res)
	if err != nil {
		return err
	}
	tool := nnbaton.New()
	defer func() {
		if stats {
			fmt.Fprintln(os.Stderr, tool.EngineStats())
		}
	}()
	switch mode {
	case "granularity":
		return granularity(ctx, tool, m, macs, area)
	case "explore":
		return explore(ctx, tool, m, macs, area)
	case "cost":
		return cost(ctx, tool, m, macs, area)
	}
	return fmt.Errorf("unknown mode %q (granularity|explore|cost)", mode)
}

// cost runs the granularity study and prices every implementation under the
// default fabrication process (the manufacturing-cost extension).
func cost(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, macs int, area float64) error {
	res, err := tool.GranularityContext(ctx, m, nnbaton.TableIISpace(), macs, area)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Manufacturing cost for %s, %d MACs", m.Name, macs),
		"tuple", "area mm2", "die yield", "silicon $", "assembly $", "total $", "EDP pJ*s")
	costed := res.WithCosts(nnbaton.DefaultProcess())
	sort.Slice(costed, func(i, j int) bool { return costed[i].Cost.TotalUSD < costed[j].Cost.TotalUSD })
	for _, cp := range costed {
		if cp.MappedLayers == 0 {
			continue
		}
		t.Add(cp.HW.Tuple(), fmt.Sprintf("%.2f", cp.ChipletAreaMM2),
			report.Pct(cp.Cost.DieYield),
			fmt.Sprintf("%.2f", cp.Cost.SiliconUSD), fmt.Sprintf("%.2f", cp.Cost.AssemblyUSD),
			fmt.Sprintf("%.2f", cp.Cost.TotalUSD), fmt.Sprintf("%.3g", cp.EDP()))
	}
	return t.Render(os.Stdout)
}

func granularity(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, macs int, area float64) error {
	res, err := tool.GranularityContext(ctx, m, nnbaton.TableIISpace(), macs, area)
	if err != nil {
		return err
	}
	t := report.New(fmt.Sprintf("Chiplet granularity for %s, %d MACs, %.1f mm² limit", m.Name, macs, area),
		"tuple", "energy uJ", "runtime ms", "EDP pJ*s", "area mm2", "feasible")
	sort.Slice(res.Points, func(i, j int) bool { return res.Points[i].EDP() < res.Points[j].EDP() })
	for _, p := range res.Points {
		if p.MappedLayers == 0 {
			continue
		}
		t.Add(p.HW.Tuple(), report.UJ(p.Energy.Total()), report.MS(p.Seconds),
			fmt.Sprintf("%.3g", p.EDP()), fmt.Sprintf("%.2f", p.ChipletAreaMM2),
			fmt.Sprint(p.MeetsArea))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if best, ok := res.BestEDP(); ok {
		fmt.Printf("recommended: %s (%s)\n", best.HW.Tuple(), best)
	} else {
		fmt.Println("no implementation meets the area constraint")
	}
	return nil
}

func explore(ctx context.Context, tool *nnbaton.Baton, m nnbaton.Model, macs int, area float64) error {
	res, err := tool.ExploreContext(ctx, m, nnbaton.TableIISpace(), macs, area)
	if err != nil {
		return err
	}
	fmt.Printf("swept %d points, %d valid, %d on the area/EDP Pareto front\n\n",
		res.Swept, len(res.Points), len(res.ParetoFront()))
	t := report.New("Pareto front (area vs EDP)", "tuple", "memory", "EDP pJ*s", "area mm2")
	front := res.ParetoFront()
	sort.Slice(front, func(i, j int) bool { return front[i].ChipletAreaMM2 < front[j].ChipletAreaMM2 })
	for _, p := range front {
		t.Add(p.HW.Tuple(), p.HW.String(), fmt.Sprintf("%.3g", p.EDP()), fmt.Sprintf("%.2f", p.ChipletAreaMM2))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if res.HasBest {
		fmt.Printf("recommended under %.1f mm²: %s\n", area, res.Best.HW)
	}
	return nil
}
