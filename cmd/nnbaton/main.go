// Command nnbaton runs the post-design flow: it maps a DNN model onto a
// fixed multichip hardware configuration with the per-layer optimal
// spatial/temporal strategy and reports energy, runtime and the mapping
// decisions (§IV-D).
//
// Usage:
//
//	nnbaton -model vgg16 -res 224                 # case-study hardware
//	nnbaton -model resnet50 -chiplets 2 -cores 8 -lanes 16 -vector 16
//	nnbaton -model vgg16 -layer conv12 -simba     # one layer + baseline
//	nnbaton -model vgg16 -metrics out.json        # per-phase timing dump
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nnbaton"
	"nnbaton/internal/c3p"
	"nnbaton/internal/energy"
	"nnbaton/internal/hardware"
	"nnbaton/internal/obs"
	"nnbaton/internal/report"
	"nnbaton/internal/sim"
	"nnbaton/internal/simba"
	"nnbaton/internal/strategy"
	"nnbaton/internal/workload"
)

// options collects the flag values of one invocation.
type options struct {
	model     string
	res       int
	layer     string
	simba     bool
	trace     bool
	stats     bool
	chiplets  int
	cores     int
	lanes     int
	vector    int
	out       string
	load      string
	metrics   string
	pprofAddr string
	timeout   time.Duration
	retries   int
	faults    string
	topology  string
	cacheDir  string
}

// validate rejects nonsense flag values before any work starts, so the
// process fails on line one instead of deep inside a sweep.
func (o options) validate() error {
	if o.timeout < 0 {
		return fmt.Errorf("-timeout must be non-negative, got %v", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be non-negative, got %d", o.retries)
	}
	if o.res <= 0 {
		return fmt.Errorf("-res must be positive, got %d", o.res)
	}
	if o.faults != "" && o.layer != "" {
		return fmt.Errorf("-faults evaluates the whole model; drop -layer")
	}
	if o.faults != "" && o.out != "" {
		return fmt.Errorf("-faults does not export strategy files; drop -o")
	}
	if _, err := hardware.ParseTopology(o.topology); err != nil {
		return fmt.Errorf("-topology: %w", err)
	}
	// Fail fast on an unwritable cache directory, before any search runs.
	if o.cacheDir != "" {
		if err := nnbaton.EnsureCacheDir(o.cacheDir); err != nil {
			return fmt.Errorf("-cache-dir: %w", err)
		}
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "vgg16", "model: alexnet|vgg16|resnet50|darknet19|mobilenetv2|yolov2, or a .txt description file")
	flag.IntVar(&o.res, "res", 224, "input resolution (224 or 512)")
	flag.StringVar(&o.layer, "layer", "", "map a single named layer instead of the whole model")
	flag.BoolVar(&o.simba, "simba", false, "also evaluate the Simba weight-centric baseline")
	flag.IntVar(&o.chiplets, "chiplets", 0, "override: chiplets per package")
	flag.IntVar(&o.cores, "cores", 0, "override: cores per chiplet")
	flag.IntVar(&o.lanes, "lanes", 0, "override: lanes per core")
	flag.IntVar(&o.vector, "vector", 0, "override: vector-MAC size")
	flag.StringVar(&o.out, "o", "", "write the mapping strategy to this JSON file")
	flag.BoolVar(&o.trace, "trace", false, "with -layer: run the discrete-event trace and print a pipeline timeline")
	flag.StringVar(&o.load, "load", "", "load and reprice a strategy JSON file instead of searching")
	flag.BoolVar(&o.stats, "stats", false, "print engine search-cache statistics (shape deduplication) after mapping")
	flag.StringVar(&o.metrics, "metrics", "", "write per-phase timing and engine cache metrics as JSON to this file on exit")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.DurationVar(&o.timeout, "timeout", 0, "per-layer search deadline (e.g. 30s); 0 disables")
	flag.IntVar(&o.retries, "retries", 0, "max re-attempts after a retryable search failure (panic, deadline, transient)")
	flag.StringVar(&o.faults, "faults", "", "map onto a degraded fabric: fault spec like 'chiplet2,cores3@1,freq90%' (see ParseFault)")
	flag.StringVar(&o.topology, "topology", "ring", "on-package interconnect: "+strings.Join(hardware.TopologyNames(), "|"))
	flag.StringVar(&o.cacheDir, "cache-dir", "", "persist layer-search results to this crash-safe cache directory and reuse them across runs")
	flag.Parse()
	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton:", err)
		os.Exit(2)
	}
	if o.pprofAddr != "" {
		addr, err := obs.ServePprof(o.pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nnbaton:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof: http://%s/debug/pprof/\n", addr)
	}
	if o.load != "" {
		if err := reprice(o.load); err != nil {
			fmt.Fprintln(os.Stderr, "nnbaton:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton:", err)
		os.Exit(1)
	}
}

// reprice loads a strategy file, re-validates every mapping and re-runs the
// C³P evaluation on it.
func reprice(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sf, err := strategy.Read(f)
	if err != nil {
		return err
	}
	tr, err := strategy.Reprice(sf)
	if err != nil {
		return err
	}
	cm := hardware.MustCostModel()
	br := energy.FromTraffic(tr, sf.Hardware, cm)
	fmt.Printf("strategy %s@%d on %s: %d layers, %.2f mJ\n  %v\n",
		sf.Model, sf.Input, sf.Hardware.Tuple(), len(sf.Layers), br.Total()/1e9, br)
	return nil
}

func run(o options) error {
	m, err := workload.Load(o.model, o.res)
	if err != nil {
		return err
	}
	hw := nnbaton.CaseStudyHardware()
	if o.chiplets > 0 || o.cores > 0 || o.lanes > 0 || o.vector > 0 {
		if o.chiplets > 0 {
			hw.Chiplets = o.chiplets
		}
		if o.cores > 0 {
			hw.Cores = o.cores
		}
		if o.lanes > 0 {
			hw.Lanes = o.lanes
		}
		if o.vector > 0 {
			hw.Vector = o.vector
		}
		hw = hardware.Config{Chiplets: hw.Chiplets, Cores: hw.Cores, Lanes: hw.Lanes, Vector: hw.Vector}.
			WithProportionalMemory(hardware.DefaultProportion())
	}
	hw.Topology, _ = hardware.ParseTopology(o.topology) // validated on line one
	if err := hw.Validate(); err != nil {
		return err
	}
	var mask nnbaton.FaultMask
	if o.faults != "" {
		if mask, err = nnbaton.ParseFault(o.faults, hw); err != nil {
			return err
		}
	}
	var reg *obs.Registry
	if o.metrics != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg) // capture c3p/sim/halo phases too
		defer func() {
			if err := reg.WriteFile(o.metrics); err != nil {
				fmt.Fprintln(os.Stderr, "nnbaton:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", o.metrics)
			}
		}()
	}
	cfg := nnbaton.EngineConfig{
		PointTimeout: o.timeout,
		MaxRetries:   o.retries,
		Registry:     reg,
	}
	if o.cacheDir != "" {
		cache, err := nnbaton.OpenResultCache(o.cacheDir, nnbaton.StoreOptions{Registry: reg})
		if err != nil {
			return err
		}
		defer cache.Close()
		cfg.Cache = cache
	}
	tool := nnbaton.NewWithConfig(cfg)
	fmt.Printf("hardware: %s  (chiplet area %.2f mm²)\n\n", hw, tool.ChipletAreaMM2(hw))
	if o.stats {
		defer func() { fmt.Fprintln(os.Stderr, tool.EngineStats()) }()
	}
	if o.faults != "" {
		return runDegraded(tool, m, hw, mask)
	}

	if o.layer != "" {
		l, err := m.Layer(o.layer)
		if err != nil {
			return err
		}
		rep, err := tool.MapLayer(l, hw)
		if err != nil {
			return err
		}
		fmt.Printf("%v\n  mapping: %s\n  energy:  %s\n  runtime: %s ms\n\n",
			l, rep.Mapping, rep.Energy, report.MS(rep.Seconds))
		if o.trace {
			a, err := c3p.Analyze(l, hw, rep.Strategy)
			if err != nil {
				return err
			}
			tr, err := sim.Trace(a, 64)
			if err != nil {
				return err
			}
			fmt.Printf("trace: %v (per-chiplet %v)\n", tr, tr.PerChiplet)
			if err := sim.Gantt(os.Stdout, tr, 72); err != nil {
				return err
			}
		}
		if o.simba {
			sr, err := simba.Evaluate(l, hw, simba.DefaultGrid(hw))
			if err != nil {
				return err
			}
			se := energy.FromTraffic(sr.Traffic, hw, hardware.MustCostModel())
			fmt.Printf("Simba baseline: %.2f uJ (NN-Baton saves %s)\n",
				se.Total()/1e6, report.Pct(1-rep.Energy.Total()/se.Total()))
		}
		return nil
	}

	rep, err := tool.MapModel(m, hw)
	if err != nil {
		return err
	}
	if o.out != "" {
		if err := writeStrategy(o.out, m, hw, rep); err != nil {
			return err
		}
		fmt.Printf("wrote mapping strategy to %s\n", o.out)
	}
	t := report.New(fmt.Sprintf("%s @ %dx%d — per-layer optimal mappings", m.Name, m.Resolution, m.Resolution),
		"layer", "mapping", "energy uJ", "runtime ms")
	for _, lr := range rep.Layers {
		t.Add(lr.Layer.Name, lr.Mapping, report.UJ(lr.Energy.Total()), report.MS(lr.Seconds))
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("total: %.2f mJ, %.3f ms", rep.Energy.Total()/1e9, rep.Seconds*1e3)
	if len(rep.Skipped) > 0 {
		fmt.Printf("  (skipped: %s)", strings.Join(rep.Skipped, ","))
	}
	fmt.Println()
	if o.simba {
		cmp, err := tool.CompareSimba(m, hw)
		if err != nil {
			return err
		}
		fmt.Printf("Simba baseline: %.2f mJ — NN-Baton saves %s\n",
			cmp.Simba.Total()/1e9, report.Pct(cmp.SavingsRatio))
	}
	return nil
}

// runDegraded maps the model onto the fabric that survives the fault mask:
// the ring reroutes around dead chiplets and the mapper picks the best
// surviving uniform envelope (yield-aware post-design flow).
func runDegraded(tool *nnbaton.Baton, m workload.Model, hw nnbaton.Hardware, mask nnbaton.FaultMask) error {
	pt, err := tool.MapModelDegraded(context.Background(), m, hw, mask)
	if err != nil {
		return err
	}
	fmt.Printf("fault scenario: %s — %d/%d chiplets alive, %d of %d MACs surviving (%d failed units)\n",
		pt.Mask, pt.Alive, hw.Chiplets, pt.TotalMACs, hw.TotalMACs(), pt.FailedUnits)
	env := pt.Envelope.Tuple()
	if !pt.EnvMask.IsZero() {
		env += " (ring rerouted)"
	}
	fmt.Printf("mapped envelope: %s\n\n", env)
	for _, ev := range pt.Evals {
		fmt.Printf("%s @ %dx%d: %d layers mapped, %.2f mJ, %s ms",
			m.Name, m.Resolution, m.Resolution, ev.Mapped, ev.Energy.Total()/1e9, report.MS(pt.Seconds))
		if len(ev.Skipped) > 0 {
			fmt.Printf("  (skipped: %s)", strings.Join(ev.Skipped, ","))
		}
		fmt.Println()
	}
	fmt.Printf("EDP: %.4g pJ*s\n", pt.EDP())
	return nil
}

// writeStrategy exports the per-layer mapping decisions as a strategy file
// for downstream tooling (the "hardware compiler" interface of §IV-D).
func writeStrategy(path string, m workload.Model, hw nnbaton.Hardware, rep nnbaton.ModelReport) error {
	f := strategy.File{Model: m.Name, Input: m.Resolution, Hardware: hw}
	for _, lr := range rep.Layers {
		f.Layers = append(f.Layers, strategy.LayerStrategy{
			Layer: lr.Layer, Mapping: lr.Strategy,
			EnergyPJ: lr.Energy.Total(), Cycles: lr.Cycles,
		})
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return strategy.Write(fh, f)
}
