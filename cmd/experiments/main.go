// Command experiments regenerates every table and figure of the NN-Baton
// paper evaluation as text tables (see DESIGN.md for the experiment index).
//
// Usage:
//
//	experiments -exp fig11        # one experiment
//	experiments -exp all -quick   # everything, reduced workloads
//	experiments -list             # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nnbaton/internal/ckpt"
	"nnbaton/internal/engine"
	"nnbaton/internal/experiments"
	"nnbaton/internal/hardware"
	"nnbaton/internal/obs"
	"nnbaton/internal/store"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (or 'all')")
	quick := flag.Bool("quick", false, "reduced workloads for a fast pass")
	list := flag.Bool("list", false, "list experiment ids")
	metrics := flag.String("metrics", "", "write per-phase timing and engine cache metrics as JSON to this file on exit")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	timeout := flag.Duration("timeout", 0, "per-point search deadline (e.g. 30s); 0 disables")
	retries := flag.Int("retries", 0, "max re-attempts after a retryable point failure (panic, deadline, transient)")
	checkpoint := flag.String("checkpoint", "", "journal completed sweep points to this JSONL file (crash-safe)")
	resume := flag.Bool("resume", false, "replay points already journaled in the -checkpoint file instead of re-evaluating them")
	cacheDir := flag.String("cache-dir", "", "persist layer-search results to this crash-safe cache directory and reuse them across runs")
	topology := flag.String("topology", "ring", "on-package interconnect for every experiment: "+strings.Join(hardware.TopologyNames(), "|"))
	flag.Parse()
	topo, err := hardware.ParseTopology(*topology)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -topology: %v\n", err)
		os.Exit(2)
	}
	experiments.SetTopology(topo)
	if *timeout < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -timeout must be non-negative, got %v\n", *timeout)
		os.Exit(2)
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -retries must be non-negative, got %d\n", *retries)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		obs.SetDefault(reg)
	}
	var sink obs.ProgressSink
	if *progress {
		sink = obs.NewWriterSink(os.Stderr)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "experiments: -resume requires -checkpoint")
		os.Exit(1)
	}
	// Fail fast on unwritable persistence targets before any experiment runs.
	if *checkpoint != "" {
		if err := ckpt.ValidateWritable(*checkpoint); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -checkpoint:", err)
			os.Exit(2)
		}
	}
	if *cacheDir != "" {
		if err := store.EnsureWritableDir(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: -cache-dir:", err)
			os.Exit(2)
		}
	}
	var journal *ckpt.Journal
	if *checkpoint != "" {
		var err error
		journal, err = ckpt.Open(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer journal.Close()
		if *resume {
			fmt.Fprintf(os.Stderr, "resuming from %s: %d journaled points\n", *checkpoint, journal.Len())
		}
	}
	var cache *store.Store
	if *cacheDir != "" {
		var err error
		cache, err = store.Open(*cacheDir, store.Options{Registry: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer cache.Close()
	}
	if reg != nil || sink != nil || journal != nil || cache != nil || *timeout > 0 || *retries > 0 {
		cfg := engine.Config{
			PointTimeout: *timeout,
			MaxRetries:   *retries,
			Registry:     reg,
			Sink:         sink,
			Journal:      journal,
		}
		if cache != nil {
			cfg.Cache = cache
		}
		experiments.SetEngineConfig(cfg)
	}
	if *metrics != "" {
		defer func() {
			if err := reg.WriteFile(*metrics); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
			} else {
				fmt.Fprintf(os.Stderr, "wrote metrics to %s\n", *metrics)
			}
		}()
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}
	ran := 0
	for _, e := range all {
		if *exp != "all" && e.ID != *exp {
			continue
		}
		fmt.Printf("### %s — %s\n\n", e.ID, e.Desc)
		if err := e.Run(os.Stdout, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", *exp)
		os.Exit(1)
	}
}
