// Command nnbaton-fleetd is the fleet DSE control service: a coordinator that
// admits study submissions over HTTP, journals them crash-safely, schedules
// their shards onto registered workers and serves merged results — plus a
// worker mode that joins a coordinator and executes assigned studies.
//
// Usage:
//
//	nnbaton-fleetd -listen :8080 -data /srv/nnbaton            # coordinator
//	nnbaton-fleetd -worker http://host:8080 -data /srv/nnbaton # worker
//	nnbaton-fleetd -listen :8080 -data /srv/nnbaton -local-workers 2
//
// The -data directory is the shared data plane: the study journal, per-study
// worker journals and lease files, and the persistent result cache all live
// under it. Coordinator and workers must see the same directory.
//
// SIGTERM/SIGINT drain the coordinator: admission stops (submissions answer
// 429), in-flight shards finish or checkpoint out, journals flush, and the
// process exits 0. A SIGKILLed coordinator recovers on restart by replaying
// its study journal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"nnbaton/internal/fleet"
	"nnbaton/internal/obs"
)

type options struct {
	listen       string
	data         string
	worker       string
	name         string
	localWorkers int
	queueLimit   int
	concurrent   int
	retryLimit   int
	workerTTL    time.Duration
	leaseTTL     time.Duration
	deadline     time.Duration
	drainWait    time.Duration
	engineWork   int
	noFsync      bool
	addrFile     string
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "", "coordinator mode: serve the fleet API on this address (e.g. :8080)")
	flag.StringVar(&o.data, "data", "", "shared data directory (study journal, leases, worker journals, result cache)")
	flag.StringVar(&o.worker, "worker", "", "worker mode: join the coordinator at this base URL (e.g. http://host:8080)")
	flag.StringVar(&o.name, "name", fmt.Sprintf("w-%d", os.Getpid()), "worker identity (names this worker's journals and leases)")
	flag.IntVar(&o.localWorkers, "local-workers", 0, "coordinator mode: also run N in-process workers (single-box fleet)")
	flag.IntVar(&o.queueLimit, "queue-limit", 0, "bound on queued studies; a full queue rejects submissions with 429 (0 = default)")
	flag.IntVar(&o.concurrent, "max-concurrent", 0, "bound on simultaneously running studies (0 = default)")
	flag.IntVar(&o.retryLimit, "retry-limit", 0, "failures before a study is quarantined (0 = default)")
	flag.DurationVar(&o.workerTTL, "worker-ttl", 0, "expire a worker after this long without a heartbeat (0 = default)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 0, "shard lease time-to-live handed to workers (0 = default)")
	flag.DurationVar(&o.deadline, "default-deadline", 0, "deadline for studies that submit none (0 = no deadline)")
	flag.DurationVar(&o.drainWait, "drain-wait", 30*time.Second, "on SIGTERM, wait at most this long for in-flight shards to checkpoint out")
	flag.IntVar(&o.engineWork, "engine-workers", 0, "worker mode: evaluation engine concurrency per task (0 = GOMAXPROCS)")
	flag.BoolVar(&o.noFsync, "no-fsync", false, "skip fsync on study-journal records (faster, loses OS-crash durability)")
	flag.StringVar(&o.addrFile, "addr-file", "", "coordinator mode: write the bound listen address to this file once serving")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "nnbaton-fleetd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.data == "" {
		return fmt.Errorf("-data is required")
	}
	switch {
	case o.listen != "" && o.worker != "":
		return fmt.Errorf("-listen and -worker are mutually exclusive")
	case o.listen != "":
		return serve(o)
	case o.worker != "":
		return workerMain(o)
	}
	return fmt.Errorf("need -listen (coordinator) or -worker <url> (worker)")
}

// serve runs the coordinator until SIGTERM/SIGINT, then drains: stop
// admitting, let in-flight shards finish or checkpoint, flush journals, exit.
func serve(o options) error {
	reg := obs.NewRegistry()
	coord, err := fleet.Open(fleet.Options{
		DataDir:         o.data,
		QueueLimit:      o.queueLimit,
		MaxConcurrent:   o.concurrent,
		RetryLimit:      o.retryLimit,
		WorkerTTL:       o.workerTTL,
		LeaseTTL:        o.leaseTTL,
		DefaultDeadline: o.deadline,
		NoFsync:         o.noFsync,
		Registry:        reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		coord.Close()
		return err
	}
	if o.addrFile != "" {
		// temp+rename so a watcher never reads a half-written address.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			coord.Close()
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			coord.Close()
			return err
		}
	}
	srv := &http.Server{Handler: coord.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fleetd: serving on %s, data in %s\n", ln.Addr(), o.data)

	// Single-box fleets: in-process workers against the loopback API. They
	// exercise the exact same HTTP protocol as remote workers.
	var wg sync.WaitGroup
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	base := "http://" + ln.Addr().String()
	for i := 0; i < o.localWorkers; i++ {
		w, err := fleet.NewWorker(fleet.WorkerOptions{
			Coordinator:   base,
			Name:          fmt.Sprintf("%s-l%d", o.name, i),
			EngineWorkers: o.engineWork,
			Log:           os.Stderr,
		})
		if err != nil {
			coord.Close()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(workerCtx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "fleetd: local worker:", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		coord.Close()
		return fmt.Errorf("fleetd: serve: %w", err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fleetd: %v: draining (waiting up to %v for in-flight shards)\n", s, o.drainWait)
	}
	signal.Stop(sig)

	// Drain order matters: mark draining first (admission answers 429, task
	// polls and heartbeats tell workers to stop), wait for workers to
	// checkpoint out, then stop serving and close the journal.
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainWait)
	defer cancel()
	drainErr := coord.Drain(drainCtx)
	stopWorkers()
	wg.Wait()
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	srv.Shutdown(shutCtx) //nolint:errcheck — draining already bounded the wait
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(os.Stderr, "fleetd: drained cleanly")
	return nil
}

// workerMain runs one remote worker until SIGTERM/SIGINT or a coordinator
// drain. A drain is a clean exit (0); a signal cancels the in-flight task
// (its journaled records are durable, its leases expire for peers to reclaim)
// and exits non-zero.
func workerMain(o options) error {
	w, err := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator:   o.worker,
		Name:          o.name,
		EngineWorkers: o.engineWork,
		Log:           os.Stderr,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := w.Run(ctx); err != nil {
		if errors.Is(err, context.Canceled) {
			return fmt.Errorf("interrupted; journaled shard work is durable and reclaimable")
		}
		return err
	}
	return nil
}
