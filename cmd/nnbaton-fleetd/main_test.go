package main

// Coordinator crash-recovery chaos test, extending the shard-worker SIGKILL
// pattern of internal/dse: a real fleetd process (coordinator plus one local
// worker) is SIGKILLed mid-study; a restarted fleetd replays its study
// journal, re-queues the interrupted study, re-binds to the surviving lease
// and checkpoint state and completes it — and the merged result it serves
// must be byte-identical to an uninterrupted single-process run. A final
// SIGTERM proves graceful drain: exit 0 with journals flushed.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"nnbaton/internal/ckpt"
	"nnbaton/internal/dse"
	"nnbaton/internal/engine"
	"nnbaton/internal/faults"
	"nnbaton/internal/fleet"
	"nnbaton/internal/hardware"
	"nnbaton/internal/workload"
)

const fleetdEnv = "NNBATON_FLEETD"

// Tiny study fixtures, mirroring the dse test suite: 3 compute
// configurations at a 512-MAC budget, seconds of work at most.
func tinySpace() dse.Space {
	return dse.Space{
		Vector:     []int{8},
		Lanes:      []int{8},
		Cores:      []int{2, 4, 8},
		Chiplets:   []int{1, 2, 4},
		OL1PerLane: []int{96, 144},
		AL1:        []int{1024, 4096},
		WL1:        []int{8192, 32768},
		AL2:        []int{32768, 65536},
	}
}

func tinySpec() fleet.StudySpec {
	sp := tinySpace()
	return fleet.StudySpec{
		Model: "tiny", Res: 32,
		Layers: []workload.Layer{
			{Model: "tiny", Name: "conv1", HO: 32, WO: 32, CO: 32, CI: 16,
				R: 3, S: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
			{Model: "tiny", Name: "conv2", HO: 16, WO: 16, CO: 64, CI: 32,
				R: 3, S: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		},
		MACs: 512, AreaMM2: 3.0, Space: &sp, Shards: 2,
	}
}

// referenceBytes is the canonical merged journal of the uninterrupted
// single-process study.
func referenceBytes(t *testing.T, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, "single.jsonl")
	j, err := ckpt.OpenWith(path, ckpt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := tinySpec().ResolveModel()
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.NewFromConfig(hardware.MustCostModel(), engine.Config{Journal: j})
	if _, err := dse.Explore(context.Background(), m, tinySpace(), 512, 3.0, eng); err != nil {
		t.Fatal(err)
	}
	j.Close()
	var buf bytes.Buffer
	if _, err := ckpt.MergeFiles(&buf, path); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFleetdHelper is the subprocess body: a real fleetd (coordinator + one
// local worker), optionally with slowed evaluation so the parent can SIGKILL
// it mid-study. Only runs when re-executed with the helper environment set.
func TestFleetdHelper(t *testing.T) {
	if os.Getenv(fleetdEnv) == "" {
		t.Skip("subprocess helper, driven by TestChaosFleetdKillRecoverMerge")
	}
	if d := os.Getenv("NNBATON_FLEETD_DELAY"); d != "" && d != "0" {
		delay, err := time.ParseDuration(d)
		if err != nil {
			t.Fatal(err)
		}
		faults.Set(faults.NewInjector(faults.Rule{Site: "dse.explore_compute",
			Kind: faults.KindDelay, Delay: delay}))
		defer faults.Clear()
	}
	leaseTTL, err := time.ParseDuration(os.Getenv("NNBATON_FLEETD_LEASETTL"))
	if err != nil {
		t.Fatal(err)
	}
	err = run(options{
		listen:       "127.0.0.1:0",
		data:         os.Getenv("NNBATON_FLEETD_DATA"),
		name:         os.Getenv("NNBATON_FLEETD_NAME"),
		localWorkers: 1,
		engineWork:   1,
		leaseTTL:     leaseTTL,
		workerTTL:    5 * time.Second,
		drainWait:    30 * time.Second,
		addrFile:     os.Getenv("NNBATON_FLEETD_ADDRFILE"),
	})
	if err != nil {
		t.Fatalf("fleetd: %v", err)
	}
}

// spawnFleetd starts one fleetd as a real subprocess and returns it with its
// combined output buffer.
func spawnFleetd(t *testing.T, data, addrFile, delay string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestFleetdHelper$", "-test.v")
	out := new(bytes.Buffer)
	cmd.Stdout, cmd.Stderr = out, out
	cmd.Env = append(os.Environ(),
		fleetdEnv+"=1",
		"NNBATON_FLEETD_DATA="+data,
		"NNBATON_FLEETD_ADDRFILE="+addrFile,
		"NNBATON_FLEETD_DELAY="+delay,
		"NNBATON_FLEETD_LEASETTL=750ms",
		"NNBATON_FLEETD_NAME=chaos",
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, out
}

// waitAddr polls for the coordinator's addr-file and returns its base URL.
func waitAddr(t *testing.T, path string, out *bytes.Buffer) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return "http://" + string(b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleetd never wrote %s; output:\n%s", path, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// journaledExplores counts completed compute-configuration records in a
// journal, tolerating a missing file.
func journaledExplores(path string) int {
	seen, _, err := ckpt.Load(path)
	if err != nil {
		return 0
	}
	n := 0
	for key := range seen {
		if strings.HasPrefix(key, "explore|") {
			n++
		}
	}
	return n
}

// TestChaosFleetdKillRecoverMerge is the coordinator-death acceptance test:
// SIGKILL fleetd mid-study, restart it over the same data directory, and the
// study must complete with merged bytes identical to the single-process run;
// a closing SIGTERM must drain and exit 0.
func TestChaosFleetdKillRecoverMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills subprocesses")
	}
	dir := t.TempDir()
	want := referenceBytes(t, dir)
	data := filepath.Join(dir, "data")

	// Life 1: slow evaluation (300ms per compute configuration) so the kill
	// lands mid-study, deterministically after the first durable record.
	victim, victimOut := spawnFleetd(t, data, filepath.Join(dir, "addr1"), "300ms")
	base := waitAddr(t, filepath.Join(dir, "addr1"), victimOut)

	body, err := json.Marshal(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/studies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, raw)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %q: %v", raw, err)
	}

	// SIGKILL as soon as the worker's journal holds its first record: the
	// study is provably mid-flight and the coordinator gets no chance to
	// clean up anything.
	workerJournal := filepath.Join(data, "studies", sub.ID, "worker-chaos-l0.jsonl")
	deadline := time.Now().Add(30 * time.Second)
	for journaledExplores(workerJournal) == 0 {
		if time.Now().After(deadline) {
			victim.Process.Kill()
			victim.Wait()
			t.Fatalf("no journal record in 30s; output:\n%s", victimOut)
		}
		time.Sleep(10 * time.Millisecond)
	}
	killedAt := journaledExplores(workerJournal)
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait() //nolint:errcheck — killed on purpose
	total := len(tinySpace().ComputeConfigs(512))
	if killedAt >= total {
		t.Skipf("study finished all %d configurations before the kill landed", total)
	}

	// Life 2: same data directory, full speed. Replay must re-queue the
	// study; the worker resumes its own journal and reclaims the dead
	// instance's shard lease after its TTL.
	heir, heirOut := spawnFleetd(t, data, filepath.Join(dir, "addr2"), "0")
	base = waitAddr(t, filepath.Join(dir, "addr2"), heirOut)
	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/studies/" + sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			State  string `json:"state"`
			Reason string `json:"reason"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			break
		}
		if st.State != "queued" && st.State != "running" {
			t.Fatalf("recovered study is %s (%s); output:\n%s", st.State, st.Reason, heirOut)
		}
		if time.Now().After(deadline) {
			t.Fatalf("study still %s after 60s; output:\n%s", st.State, heirOut)
		}
		time.Sleep(25 * time.Millisecond)
	}

	resp, err = http.Get(base + "/v1/studies/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result = %d: %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recovered fleet result differs from the single-process journal:\n%s\nvs\n%s", got, want)
	}

	// Graceful drain: SIGTERM must exit 0 with everything flushed.
	if err := heir.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- heir.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("fleetd exit after SIGTERM = %v, want 0; output:\n%s", err, heirOut)
		}
	case <-time.After(30 * time.Second):
		heir.Process.Kill()
		t.Fatalf("fleetd did not exit within 30s of SIGTERM; output:\n%s", heirOut)
	}
	if !strings.Contains(heirOut.String(), "drained cleanly") {
		t.Errorf("fleetd output lacks the clean-drain line:\n%s", heirOut)
	}
}
